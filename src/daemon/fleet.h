// Fleet provisioning and driving: the controller side of the control plane.
//
// MakeFleetConfigs turns one P2PSystem into one PeerdConfig per node (fixed
// ports, shared system file, per-node data/pid/obs paths), PickFreePorts
// reserves the ports, and FleetController is the process that plays the
// in-process Session's role against remote p2pdb_peerd daemons: bootstrap
// handshake, start discovery, start the update session, poll the Section-5
// statistics until the global fixpoint, fetch database dumps, shut the fleet
// down. p2pdb_fleetctl and tests/fleet_test.cc both drive fleets through it.
#ifndef P2PDB_DAEMON_FLEET_H_
#define P2PDB_DAEMON_FLEET_H_

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/control.h"
#include "src/core/system.h"
#include "src/daemon/config.h"
#include "src/net/tcp_runtime.h"
#include "src/relational/database.h"
#include "src/util/status.h"

namespace p2pdb::daemon {

/// Reserves `count` distinct kernel-assigned TCP ports on `host` by binding
/// ephemeral listeners, reading the assigned ports back, and closing them.
/// All sockets stay open until every port is known, so the kernel cannot
/// hand the same port out twice; the daemons' listeners set SO_REUSEADDR, so
/// the immediate rebind is safe.
Result<std::vector<uint16_t>> PickFreePorts(const std::string& host,
                                            size_t count);

/// One PeerdConfig per system node: node i listens on host:ports[i], every
/// config carries the full endpoint table, and the per-node durable state
/// lands under `root`/peer<i>. `ports` must have one entry per node.
Result<std::vector<PeerdConfig>> MakeFleetConfigs(
    const core::P2PSystem& system, const std::string& system_file,
    const std::string& root, const std::string& host,
    const std::vector<uint16_t>& ports, NodeId super_peer, bool no_sync);

/// Drives a fleet of p2pdb_peerd processes over the wire control protocol.
/// Registers itself as one extra node (id = system node_count) on its own
/// TcpRuntime, so daemon replies route back through the ordinary endpoint
/// table — the controller's row travels inside the bootstrap handshake.
class FleetController : public net::PeerHandler {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    /// Bound on each Await*/Bootstrap/Dump call.
    std::chrono::milliseconds timeout{30'000};
    /// Stamped into the bootstrap and echoed by daemons in every reply;
    /// bump it when re-driving a fleet so stale replies are discardable.
    uint64_t epoch = 1;
  };

  /// Builds the controller runtime and installs `fleet` as its endpoint
  /// table. Does not touch the network: the daemons first hear from the
  /// controller when Bootstrap() runs.
  static Result<std::unique_ptr<FleetController>> Connect(
      core::P2PSystem system, std::vector<core::wire::EndpointEntry> fleet,
      NodeId super_peer, Options options);

  ~FleetController() override;

  /// Sends the session handshake to `nodes` and waits for every ack. Any
  /// rejection (identity/schema/rule drift at a daemon) fails the call with
  /// the daemon's reason.
  Status Bootstrap(const std::vector<NodeId>& nodes);

  /// Sends kStartDiscovery to `nodes` (no wait).
  Status StartDiscovery(const std::vector<NodeId>& nodes);

  /// Polls until every node in `nodes` reports its discovery phase closed.
  Status AwaitDiscoveryClosed(const std::vector<NodeId>& nodes);

  /// Sends kRefreshScc to `nodes`, then runs a status barrier: per-connection
  /// FIFO means a status reply proves the refresh before it was dispatched.
  Status RefreshScc(const std::vector<NodeId>& nodes);

  /// Sends kStartUpdate(session) to the super-peer; the update floods
  /// peer-to-peer from there.
  Status StartUpdate(uint64_t session);

  /// Polls until no node in `nodes` reports an open update phase AND two
  /// consecutive status rounds are identical — the cross-process analogue of
  /// the in-process session returning from RunUpdate. Fills `final_reports`
  /// (optional) with the last round.
  Status AwaitUpdateFixpoint(const std::vector<NodeId>& nodes,
                             std::vector<core::wire::StatusReport>* final);

  /// Polls until two consecutive status rounds from `nodes` are identical,
  /// with no phase-state requirement — used to let in-flight work drain
  /// after a peer was killed mid-propagation.
  Status AwaitStable(const std::vector<NodeId>& nodes);

  /// One round of kStatusRequest to `nodes`, waiting for every reply.
  Result<std::vector<core::wire::StatusReport>> PollStatus(
      const std::vector<NodeId>& nodes);

  /// Fetches and deserializes one peer's full local database.
  Result<rel::Database> Dump(NodeId node);

  /// Sends kShutdown to `nodes` (graceful daemon exit; no wait).
  Status SendShutdown(const std::vector<NodeId>& nodes);

  /// All fleet node ids, in id order.
  std::vector<NodeId> AllNodes() const;

  const core::P2PSystem& system() const { return system_; }
  NodeId controller_id() const { return id_; }

  // net::PeerHandler: collects daemon replies (runs on runtime workers).
  void OnMessage(const net::Message& msg) override;

 private:
  /// How often Bootstrap() re-sends to nodes that have not acked yet — a
  /// frame sent before a daemon's listener is bound is dropped, not queued.
  static constexpr uint64_t kBootstrapResendMicros = 250'000;

  FleetController(core::P2PSystem system,
                  std::vector<core::wire::EndpointEntry> fleet,
                  NodeId super_peer, Options options);

  void SendControl(NodeId to, net::MessageType type,
                   std::vector<uint8_t> payload);
  uint64_t Deadline() const;
  /// Sleeps ~20ms on the runtime clock (keeps delivery machinery alive).
  void Nap();

  core::P2PSystem system_;
  std::vector<core::wire::EndpointEntry> fleet_;
  NodeId super_peer_;
  Options options_;
  NodeId id_;  // node_count: one past the last real node.
  std::unique_ptr<net::TcpRuntime> runtime_;

  std::mutex mutex_;
  std::map<NodeId, core::wire::BootstrapAck> acks_;
  std::map<NodeId, core::wire::StatusReport> reports_;
  std::map<NodeId, core::wire::DumpReply> dumps_;
};

}  // namespace p2pdb::daemon

#endif  // P2PDB_DAEMON_FLEET_H_
