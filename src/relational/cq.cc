#include "src/relational/cq.h"

#include "src/util/string_util.h"

namespace p2pdb::rel {

bool Term::operator==(const Term& other) const {
  if (kind != other.kind) return false;
  return kind == Kind::kVar ? var == other.var : constant == other.constant;
}

std::string Term::ToString() const {
  return is_var() ? var : constant.ToString();
}

std::string Atom::ToString() const {
  std::string out = relation + "(";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  return out + ")";
}

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  for (const Term& t : terms) {
    if (t.is_var()) out.push_back(t.var);
  }
  return out;
}

const char* BuiltinOpName(BuiltinOp op) {
  switch (op) {
    case BuiltinOp::kEq:
      return "=";
    case BuiltinOp::kNe:
      return "!=";
    case BuiltinOp::kLt:
      return "<";
    case BuiltinOp::kLe:
      return "<=";
    case BuiltinOp::kGt:
      return ">";
    case BuiltinOp::kGe:
      return ">=";
  }
  return "?";
}

std::string Builtin::ToString() const {
  return lhs.ToString() + " " + BuiltinOpName(op) + " " + rhs.ToString();
}

bool EvalBuiltin(BuiltinOp op, const Value& lhs, const Value& rhs) {
  switch (op) {
    case BuiltinOp::kEq:
      return lhs == rhs;
    case BuiltinOp::kNe:
      return !(lhs == rhs);
    case BuiltinOp::kLt:
      return lhs < rhs;
    case BuiltinOp::kLe:
      return lhs < rhs || lhs == rhs;
    case BuiltinOp::kGt:
      return rhs < lhs;
    case BuiltinOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

std::vector<std::string> ConjunctiveQuery::BodyVariables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_var() && seen.insert(t.var).second) out.push_back(t.var);
    }
  }
  return out;
}

Status ConjunctiveQuery::CheckSafe() const {
  std::set<std::string> body_vars;
  for (const Atom& a : atoms) {
    for (const Term& t : a.terms) {
      if (t.is_var()) body_vars.insert(t.var);
    }
  }
  for (const std::string& v : head_vars) {
    if (!body_vars.count(v)) {
      return Status::Unsupported("unsafe query: head variable " + v +
                                 " not bound by any atom");
    }
  }
  for (const Builtin& b : builtins) {
    for (const Term* t : {&b.lhs, &b.rhs}) {
      if (t->is_var() && !body_vars.count(t->var)) {
        return Status::Unsupported("unsafe query: built-in variable " + t->var +
                                   " not bound by any atom");
      }
    }
  }
  return Status::OK();
}

std::string ConjunctiveQuery::ToString() const {
  std::string out = "q(" + JoinStrings(head_vars, ", ") + ") :- ";
  std::vector<std::string> parts;
  for (const Atom& a : atoms) parts.push_back(a.ToString());
  for (const Builtin& b : builtins) parts.push_back(b.ToString());
  return out + JoinStrings(parts, ", ");
}

}  // namespace p2pdb::rel
