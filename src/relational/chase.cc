#include "src/relational/chase.h"

#include <set>

#include "src/relational/eval.h"

namespace p2pdb::rel {

namespace {

// Collects head variables that are not bound by the body binding: these are
// the existential variables of the rule.
std::vector<std::string> ExistentialVars(const std::vector<Atom>& head_atoms,
                                         const Binding& binding) {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Atom& a : head_atoms) {
    for (const Term& t : a.terms) {
      if (t.is_var() && !binding.count(t.var) && seen.insert(t.var).second) {
        out.push_back(t.var);
      }
    }
  }
  return out;
}

uint32_t MaxNullDepth(const Binding& binding) {
  uint32_t depth = 0;
  for (const auto& [name, value] : binding) {
    if (value.is_null()) {
      uint32_t d = NullFactory::DepthBitsOf(value.null_id());
      if (d > depth) depth = d;
    }
  }
  return depth;
}

// True if some tuple of `relation` agrees with the atom on every position
// whose term is bound under `binding` (constants are always bound). Uses the
// column index on the first bound position to avoid full scans.
bool ProjectionPresent(const Relation& relation, const Atom& atom,
                       const Binding& binding) {
  auto matches = [&](const Tuple& tuple) {
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_var()) {
        if (!(t.constant == tuple.at(i))) return false;
      } else {
        auto it = binding.find(t.var);
        if (it != binding.end() && !(it->second == tuple.at(i))) return false;
        // Unbound (existential) position: any value matches.
      }
    }
    return true;
  };

  // First bound position, if any, narrows the candidates via the index.
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const Value* key = nullptr;
    if (!t.is_var()) {
      key = &t.constant;
    } else {
      auto it = binding.find(t.var);
      if (it != binding.end()) key = &it->second;
    }
    if (key == nullptr) continue;
    auto [begin, end] = relation.IndexOn(i).equal_range(*key);
    for (auto it = begin; it != end; ++it) {
      if (matches(*it->second)) return true;
    }
    return false;
  }
  // Fully existential atom: any tuple witnesses it.
  return !relation.empty();
}

// True if `binding` extends to a homomorphism making every head atom present.
// Runs the head itself as a query, with the bound variables frozen to
// constants.
bool HomomorphismPresent(const Database& db,
                         const std::vector<Atom>& head_atoms,
                         const Binding& binding) {
  ConjunctiveQuery probe;
  for (const Atom& a : head_atoms) {
    Atom frozen;
    frozen.relation = a.relation;
    for (const Term& t : a.terms) {
      if (t.is_var()) {
        auto it = binding.find(t.var);
        frozen.terms.push_back(it == binding.end() ? t
                                                   : Term::Const(it->second));
      } else {
        frozen.terms.push_back(t);
      }
    }
    probe.atoms.push_back(std::move(frozen));
  }
  auto result = EvaluateBindings(db, probe);
  return result.ok() && !result->empty();
}

Tuple InstantiateAtom(const Atom& atom, const Binding& binding) {
  std::vector<Value> row;
  row.reserve(atom.terms.size());
  for (const Term& t : atom.terms) {
    row.push_back(t.is_var() ? binding.at(t.var) : t.constant);
  }
  return Tuple(std::move(row));
}

}  // namespace

Status ApplyRuleHead(Database* db, const std::vector<Atom>& head_atoms,
                     const Binding& binding, NullFactory* nulls,
                     const ChaseOptions& options, ChaseStats* stats) {
  std::vector<std::string> existentials = ExistentialVars(head_atoms, binding);

  if (!existentials.empty()) {
    uint32_t base_depth = MaxNullDepth(binding);
    if (base_depth + 1 >= options.max_null_depth) {
      ++stats->truncated;
      return Status::OK();
    }
    if (options.policy == ChasePolicy::kHomomorphismCheck &&
        HomomorphismPresent(*db, head_atoms, binding)) {
      ++stats->skipped;
      return Status::OK();
    }
    // Decide which atoms to insert *before* minting nulls so both policies
    // share the instantiation path.
    std::vector<const Atom*> to_insert;
    if (options.policy == ChasePolicy::kProjectionCheck) {
      for (const Atom& a : head_atoms) {
        auto rel = db->Get(a.relation);
        if (!rel.ok()) return rel.status();
        if (!ProjectionPresent(**rel, a, binding)) to_insert.push_back(&a);
      }
      if (to_insert.empty()) {
        ++stats->skipped;
        return Status::OK();
      }
    } else {
      for (const Atom& a : head_atoms) to_insert.push_back(&a);
    }
    Binding extended = binding;
    for (const std::string& v : existentials) {
      extended.emplace(v, nulls->Fresh(base_depth));
    }
    for (const Atom* a : to_insert) {
      Tuple tuple = InstantiateAtom(*a, extended);
      auto added = db->Insert(a->relation, tuple);
      if (!added.ok()) return added.status();
      if (*added) {
        ++stats->inserted;
        if (stats->collect_inserted != nullptr) {
          (*stats->collect_inserted)[a->relation].insert(std::move(tuple));
        }
      }
    }
    return Status::OK();
  }

  // Fully bound head: plain set insertion.
  bool any_inserted = false;
  for (const Atom& a : head_atoms) {
    Tuple tuple = InstantiateAtom(a, binding);
    auto added = db->Insert(a.relation, tuple);
    if (!added.ok()) return added.status();
    if (*added) {
      ++stats->inserted;
      any_inserted = true;
      if (stats->collect_inserted != nullptr) {
        (*stats->collect_inserted)[a.relation].insert(std::move(tuple));
      }
    }
  }
  if (!any_inserted) ++stats->skipped;
  return Status::OK();
}

Status ApplyRuleHeadAll(Database* db, const std::vector<Atom>& head_atoms,
                        const std::vector<Binding>& bindings,
                        NullFactory* nulls, const ChaseOptions& options,
                        ChaseStats* stats) {
  for (const Binding& b : bindings) {
    P2PDB_RETURN_IF_ERROR(
        ApplyRuleHead(db, head_atoms, b, nulls, options, stats));
  }
  return Status::OK();
}

}  // namespace p2pdb::rel
