// Relation schemas and node catalogs (the paper's DBS component).
#ifndef P2PDB_RELATIONAL_SCHEMA_H_
#define P2PDB_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace p2pdb::rel {

/// Schema of one relation: a name plus named attributes. Attribute types are
/// dynamic (any Value); names exist for documentation and printing.
class RelationSchema {
 public:
  RelationSchema() = default;
  RelationSchema(std::string name, std::vector<std::string> attributes)
      : name_(std::move(name)), attributes_(std::move(attributes)) {}

  const std::string& name() const { return name_; }
  size_t arity() const { return attributes_.size(); }
  const std::vector<std::string>& attributes() const { return attributes_; }

  /// Index of an attribute by name, or NotFound.
  Result<size_t> AttributeIndex(const std::string& attr) const;

  /// "name(a, b, c)".
  std::string ToString() const;

  bool operator==(const RelationSchema& other) const {
    return name_ == other.name_ && attributes_ == other.attributes_;
  }

 private:
  std::string name_;
  std::vector<std::string> attributes_;
};

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_SCHEMA_H_
