// Chase-style application of rule heads (algorithm A6, UpdateLocalData):
// given a binding computed from a rule body, insert the head atoms into the
// local database, inventing fresh labeled nulls for existential variables.
#ifndef P2PDB_RELATIONAL_CHASE_H_
#define P2PDB_RELATIONAL_CHASE_H_

#include <map>
#include <set>
#include <vector>

#include "src/relational/cq.h"
#include "src/relational/database.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// How to decide whether a head application is redundant.
enum class ChasePolicy {
  /// The paper's A6 check, per head atom: project the atom onto its bound
  /// (non-existential) positions; skip the atom if some existing tuple matches
  /// that projection. Cheap; may under-materialize linked head atoms.
  kProjectionCheck,
  /// Standard restricted-chase check: skip the whole head if the binding
  /// extends to a homomorphism embedding *all* head atoms at once.
  /// More faithful to certain-answer semantics; more expensive.
  kHomomorphismCheck,
};

struct ChaseOptions {
  ChasePolicy policy = ChasePolicy::kProjectionCheck;
  /// Safeguard for rule sets that are not weakly acyclic: a fresh null whose
  /// binding already contains nulls at depth >= max_null_depth is not created
  /// and the application is skipped (counted in `truncated`).
  uint32_t max_null_depth = 16;
};

struct ChaseStats {
  size_t inserted = 0;   ///< Tuples actually added.
  size_t skipped = 0;    ///< Redundant applications.
  size_t truncated = 0;  ///< Applications suppressed by the depth bound.
  /// When set, every inserted tuple is also recorded here keyed by relation —
  /// the feed for incremental (semi-naive) view maintenance downstream.
  std::map<std::string, std::set<Tuple>>* collect_inserted = nullptr;
};

/// Applies one rule head under one binding. `head_atoms` may share existential
/// variables (fresh nulls are minted once per application and reused across
/// the head's atoms). Relations referenced by head atoms must exist in `db`.
Status ApplyRuleHead(Database* db, const std::vector<Atom>& head_atoms,
                     const Binding& binding, NullFactory* nulls,
                     const ChaseOptions& options, ChaseStats* stats);

/// Applies a rule head for every binding in `bindings`. Convenience wrapper.
Status ApplyRuleHeadAll(Database* db, const std::vector<Atom>& head_atoms,
                        const std::vector<Binding>& bindings,
                        NullFactory* nulls, const ChaseOptions& options,
                        ChaseStats* stats);

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_CHASE_H_
