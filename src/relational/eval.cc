#include "src/relational/eval.h"

#include <algorithm>

namespace p2pdb::rel {

namespace {

// Counts how many variables of `atom` are bound under `binding`; constants
// count as bound positions too. Used for greedy join ordering.
size_t BoundScore(const Atom& atom, const std::set<std::string>& bound) {
  size_t score = 0;
  for (const Term& t : atom.terms) {
    if (!t.is_var() || bound.count(t.var)) ++score;
  }
  return score;
}

// Returns builtins whose variables are all bound.
bool BuiltinReady(const Builtin& b, const std::set<std::string>& bound) {
  for (const Term* t : {&b.lhs, &b.rhs}) {
    if (t->is_var() && !bound.count(t->var)) return false;
  }
  return true;
}

Value ResolveTerm(const Term& t, const Binding& binding) {
  if (!t.is_var()) return t.constant;
  auto it = binding.find(t.var);
  return it->second;
}

struct EvalContext {
  const ReadView* db;
  const ConjunctiveQuery* query;
  std::vector<const Atom*> order;
  // builtins_at[i] = builtins that become checkable right after atom order[i].
  std::vector<std::vector<const Builtin*>> builtins_at;
  std::vector<Binding> results;
};

void Backtrack(EvalContext* ctx, size_t depth, Binding* binding) {
  if (depth == ctx->order.size()) {
    ctx->results.push_back(*binding);
    return;
  }
  const Atom& atom = *ctx->order[depth];
  const Relation* rel = ctx->db->FindRelation(atom.relation);
  if (rel == nullptr) return;  // Missing relation: empty answer.

  auto try_tuple = [&](const Tuple& tuple) {
    Binding extended = *binding;
    if (!UnifyAtomWithTuple(atom, tuple, &extended)) return;
    for (const Builtin* b : ctx->builtins_at[depth]) {
      if (!EvalBuiltin(b->op, ResolveTerm(b->lhs, extended),
                       ResolveTerm(b->rhs, extended))) {
        return;
      }
    }
    Backtrack(ctx, depth + 1, &extended);
  };

  // Index lookup on the first position whose term is already a known value;
  // fall back to a full scan when every position is free.
  int indexed_pos = -1;
  Value key;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    if (!t.is_var()) {
      indexed_pos = static_cast<int>(i);
      key = t.constant;
      break;
    }
    auto it = binding->find(t.var);
    if (it != binding->end()) {
      indexed_pos = static_cast<int>(i);
      key = it->second;
      break;
    }
  }
  // The index path is gated on column < arity so a pre-indexed immutable
  // snapshot never builds an index on demand (the lazy build mutates under
  // const — unsafe with concurrent readers). An arity-mismatched atom falls
  // through to the scan, where unification rejects every tuple anyway.
  if (indexed_pos >= 0 &&
      static_cast<size_t>(indexed_pos) < rel->schema().arity()) {
    const Relation::ColumnIndex& index =
        rel->IndexOn(static_cast<size_t>(indexed_pos));
    auto [begin, end] = index.equal_range(key);
    for (auto it = begin; it != end; ++it) try_tuple(*it->second);
  } else {
    for (const Tuple& tuple : rel->tuples()) try_tuple(tuple);
  }
}

// Evaluates `query` with `skip_atom` removed (SIZE_MAX = none) and an
// optional seed binding whose variables count as already bound.
Result<std::vector<Binding>> EvaluateSeeded(const ReadView& db,
                                            const ConjunctiveQuery& query,
                                            size_t skip_atom,
                                            const Binding* seed) {
  EvalContext ctx;
  ctx.db = &db;
  ctx.query = &query;

  // Greedy ordering: repeatedly pick the atom with the most bound positions.
  std::vector<const Atom*> pending;
  pending.reserve(query.atoms.size());
  for (size_t i = 0; i < query.atoms.size(); ++i) {
    if (i != skip_atom) pending.push_back(&query.atoms[i]);
  }
  std::set<std::string> bound;
  if (seed != nullptr) {
    for (const auto& [name, value] : *seed) bound.insert(name);
  }
  std::vector<const Builtin*> pending_builtins;
  for (const Builtin& b : query.builtins) pending_builtins.push_back(&b);
  // Builtins already decidable from the seed alone are checked up front.
  std::vector<const Builtin*> immediate;
  {
    auto it = pending_builtins.begin();
    while (it != pending_builtins.end()) {
      if (BuiltinReady(**it, bound)) {
        immediate.push_back(*it);
        it = pending_builtins.erase(it);
      } else {
        ++it;
      }
    }
  }

  while (!pending.empty()) {
    auto best = std::max_element(
        pending.begin(), pending.end(), [&](const Atom* a, const Atom* b) {
          return BoundScore(*a, bound) < BoundScore(*b, bound);
        });
    const Atom* chosen = *best;
    pending.erase(best);
    ctx.order.push_back(chosen);
    for (const std::string& v : chosen->Variables()) bound.insert(v);
    // Attach builtins that just became fully bound.
    std::vector<const Builtin*> now;
    auto it = pending_builtins.begin();
    while (it != pending_builtins.end()) {
      if (BuiltinReady(**it, bound)) {
        now.push_back(*it);
        it = pending_builtins.erase(it);
      } else {
        ++it;
      }
    }
    ctx.builtins_at.push_back(std::move(now));
  }
  if (!pending_builtins.empty()) {
    return Status::Unsupported("built-in over unbound variables: " +
                               pending_builtins.front()->ToString());
  }

  // Check seed-decidable builtins before any scanning.
  Binding binding = seed != nullptr ? *seed : Binding{};
  auto resolve = [&](const Term& t) {
    return t.is_var() ? binding.at(t.var) : t.constant;
  };
  for (const Builtin* b : immediate) {
    if (!EvalBuiltin(b->op, resolve(b->lhs), resolve(b->rhs))) {
      return ctx.results;  // Seed contradicts a builtin: empty.
    }
  }

  if (ctx.order.empty()) {
    ctx.results.push_back(binding);
    return ctx.results;
  }
  Backtrack(&ctx, 0, &binding);
  return ctx.results;
}

Result<std::vector<Binding>> EvaluateImpl(const ReadView& db,
                                          const ConjunctiveQuery& query) {
  P2PDB_RETURN_IF_ERROR(query.CheckSafe());
  return EvaluateSeeded(db, query, /*skip_atom=*/SIZE_MAX, /*seed=*/nullptr);
}

}  // namespace

bool UnifyAtomWithTuple(const Atom& atom, const Tuple& tuple,
                        Binding* binding) {
  if (atom.terms.size() != tuple.arity()) return false;
  // Record variables newly bound here so we can roll back on failure.
  std::vector<std::string> added;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    const Term& t = atom.terms[i];
    const Value& v = tuple.at(i);
    if (!t.is_var()) {
      if (!(t.constant == v)) {
        for (const auto& name : added) binding->erase(name);
        return false;
      }
      continue;
    }
    auto it = binding->find(t.var);
    if (it == binding->end()) {
      binding->emplace(t.var, v);
      added.push_back(t.var);
    } else if (!(it->second == v)) {
      for (const auto& name : added) binding->erase(name);
      return false;
    }
  }
  return true;
}

Result<std::set<Tuple>> EvaluateQuery(const ReadView& db,
                                      const ConjunctiveQuery& query) {
  auto bindings = EvaluateImpl(db, query);
  if (!bindings.ok()) return bindings.status();
  std::set<Tuple> out;
  for (const Binding& b : *bindings) {
    std::vector<Value> row;
    row.reserve(query.head_vars.size());
    for (const std::string& v : query.head_vars) {
      row.push_back(b.at(v));
    }
    out.insert(Tuple(std::move(row)));
  }
  return out;
}

Result<std::vector<Binding>> EvaluateBindings(const ReadView& db,
                                              const ConjunctiveQuery& query) {
  return EvaluateImpl(db, query);
}

Result<std::set<Tuple>> EvaluateQueryDelta(const ReadView& db,
                                           const ConjunctiveQuery& query,
                                           size_t delta_atom,
                                           const std::set<Tuple>& delta) {
  if (delta_atom >= query.atoms.size()) {
    return Status::InvalidArgument("delta_atom out of range");
  }
  P2PDB_RETURN_IF_ERROR(query.CheckSafe());
  std::set<Tuple> out;
  const Atom& atom = query.atoms[delta_atom];
  for (const Tuple& t : delta) {
    Binding seed;
    if (!UnifyAtomWithTuple(atom, t, &seed)) continue;
    auto bindings = EvaluateSeeded(db, query, delta_atom, &seed);
    if (!bindings.ok()) return bindings.status();
    for (const Binding& b : *bindings) {
      std::vector<Value> row;
      row.reserve(query.head_vars.size());
      bool complete = true;
      for (const std::string& v : query.head_vars) {
        auto it = b.find(v);
        if (it == b.end()) {
          complete = false;
          break;
        }
        row.push_back(it->second);
      }
      if (complete) out.insert(Tuple(std::move(row)));
    }
  }
  return out;
}

}  // namespace p2pdb::rel
