#include "src/relational/tuple.h"

namespace p2pdb::rel {

bool Tuple::HasNull() const {
  for (const Value& v : values_) {
    if (v.is_null()) return true;
  }
  return false;
}

bool Tuple::operator<(const Tuple& other) const {
  size_t n = values_.size() < other.values_.size() ? values_.size()
                                                   : other.values_.size();
  for (size_t i = 0; i < n; ++i) {
    if (values_[i] < other.values_[i]) return true;
    if (other.values_[i] < values_[i]) return false;
  }
  return values_.size() < other.values_.size();
}

size_t Tuple::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : values_) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace p2pdb::rel
