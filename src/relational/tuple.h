// Tuple: an ordered list of values with set-semantics comparison.
#ifndef P2PDB_RELATIONAL_TUPLE_H_
#define P2PDB_RELATIONAL_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "src/relational/value.h"

namespace p2pdb::rel {

/// A database tuple. Ordered lexicographically so relations iterate
/// deterministically.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  size_t arity() const { return values_.size(); }
  const Value& at(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>* mutable_values() { return &values_; }

  /// True if any component is a labeled null.
  bool HasNull() const;

  bool operator==(const Tuple& other) const { return values_ == other.values_; }
  bool operator!=(const Tuple& other) const { return !(*this == other); }
  bool operator<(const Tuple& other) const;

  size_t Hash() const;

  /// "(v1, v2, ...)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace p2pdb::rel

namespace std {
template <>
struct hash<p2pdb::rel::Tuple> {
  size_t operator()(const p2pdb::rel::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // P2PDB_RELATIONAL_TUPLE_H_
