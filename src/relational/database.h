// Database: the local database (LDB) of one node — a catalog of relations.
#ifndef P2PDB_RELATIONAL_DATABASE_H_
#define P2PDB_RELATIONAL_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "src/relational/relation.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// Something conjunctive queries can be evaluated against: a name-to-relation
/// lookup. Implemented by the live Database and by immutable MVCC snapshots
/// (src/relational/mvcc.h), so the evaluator serves both the chase (writer
/// side) and concurrent readers without knowing which it is looking at.
class ReadView {
 public:
  virtual ~ReadView() = default;

  /// The named relation, or nullptr when it does not exist (the evaluator
  /// treats a missing relation as empty).
  virtual const Relation* FindRelation(const std::string& name) const = 0;
};

/// One node's local database. Relation names are unique within a node; the
/// paper keeps node signatures disjoint except for shared constants, so
/// relation names never clash across nodes.
class Database : public ReadView {
 public:
  /// Registers an empty relation. Fails if the name already exists.
  Status CreateRelation(RelationSchema schema);

  bool HasRelation(const std::string& name) const {
    return relations_.count(name) > 0;
  }

  Result<const Relation*> Get(const std::string& name) const;
  Result<Relation*> GetMutable(const std::string& name);

  const Relation* FindRelation(const std::string& name) const override {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : &it->second;
  }

  /// Convenience: inserts into a named relation; true if the tuple was new.
  Result<bool> Insert(const std::string& relation, Tuple tuple);

  const std::map<std::string, Relation>& relations() const {
    return relations_;
  }

  /// Total number of tuples across all relations.
  size_t TotalTuples() const;

  /// Deep equality (same relations, same tuple sets).
  bool operator==(const Database& other) const;

  std::string ToString() const;

 private:
  std::map<std::string, Relation> relations_;
};

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_DATABASE_H_
