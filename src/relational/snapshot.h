// Database snapshots: serialize a node's local database to bytes or a file
// and load it back. Used to persist the materialized instance after an update
// (the point of the paper's update algorithm is that the materialized data is
// worth keeping), and as the storage half of the Wrapper component in the
// Figure 2 architecture.
#ifndef P2PDB_RELATIONAL_SNAPSHOT_H_
#define P2PDB_RELATIONAL_SNAPSHOT_H_

#include <string>
#include <vector>

#include "src/relational/database.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// Serializes the full database (schemas and tuples) into a byte buffer.
/// Format: magic "P2DB", format version, relation count, then per relation
/// its schema and tuple set. Labeled nulls keep their identifiers.
std::vector<uint8_t> SerializeDatabase(const Database& db);

/// Inverse of SerializeDatabase; validates magic and version.
Result<Database> DeserializeDatabase(const std::vector<uint8_t>& bytes);

/// Writes/reads a snapshot file.
Status SaveDatabase(const Database& db, const std::string& path);
Result<Database> LoadDatabase(const std::string& path);

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_SNAPSHOT_H_
