// Comparison of database instances up to renaming of labeled nulls.
// Two runs of the update algorithm (or the distributed run and the global
// baseline) may invent different null identifiers for the same existential
// witnesses; instances are "the same" when a bijection over nulls maps one to
// the other.
#ifndef P2PDB_RELATIONAL_NULL_ISO_H_
#define P2PDB_RELATIONAL_NULL_ISO_H_

#include "src/relational/database.h"

namespace p2pdb::rel {

/// True if some bijection over labeled nulls maps `a` onto `b` exactly
/// (same relations, same tuple sets after renaming). Exponential in the worst
/// case; intended for test-sized instances.
bool DatabasesIsomorphic(const Database& a, const Database& b);

/// Weaker, cheap check used by large property tests: the null-free (certain)
/// tuples agree exactly, and per relation the tuple counts agree.
bool DatabasesCertainEqual(const Database& a, const Database& b);

/// True if every tuple of `sub` appears in `sup` after some (not necessarily
/// injective) mapping of sub's nulls to sup's values — i.e. `sub` homomorphically
/// maps into `sup`. Used for sound/complete envelope checks (Definition 9).
bool DatabaseHomomorphicallyContained(const Database& sub, const Database& sup);

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_NULL_ISO_H_
