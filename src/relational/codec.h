// Binary codecs for values and tuples, shared by the wire format (core/wire)
// and database snapshots (relational/snapshot).
#ifndef P2PDB_RELATIONAL_CODEC_H_
#define P2PDB_RELATIONAL_CODEC_H_

#include <set>

#include "src/relational/tuple.h"
#include "src/util/serde.h"
#include "src/util/status.h"

namespace p2pdb::rel {

void EncodeValue(const Value& v, Writer* w);
Result<Value> DecodeValue(Reader* r);

void EncodeTuple(const Tuple& t, Writer* w);
Result<Tuple> DecodeTuple(Reader* r);

void EncodeTupleSet(const std::set<Tuple>& tuples, Writer* w);
Result<std::set<Tuple>> DecodeTupleSet(Reader* r);

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_CODEC_H_
