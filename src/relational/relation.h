// Relation: a schema plus a set of tuples (set semantics, as in the paper).
#ifndef P2PDB_RELATIONAL_RELATION_H_
#define P2PDB_RELATIONAL_RELATION_H_

#include <map>
#include <set>
#include <string>

#include "src/relational/schema.h"
#include "src/relational/tuple.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// An extensional relation instance. Tuples are kept in a sorted set so that
/// iteration, printing and comparison are deterministic.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationSchema schema) : schema_(std::move(schema)) {}

  /// Copies drop index state: a copied ColumnIndex would point at the SOURCE
  /// relation's tuple nodes, not the copy's — dangling the moment the source
  /// mutates. The copy rebuilds its indexes lazily (or via PrebuildIndexes).
  Relation(const Relation& other)
      : schema_(other.schema_), tuples_(other.tuples_),
        version_(other.version_) {}
  Relation& operator=(const Relation& other) {
    if (this == &other) return *this;
    schema_ = other.schema_;
    tuples_ = other.tuples_;
    version_ = other.version_;
    indexed_version_ = 0;
    indexes_.clear();
    return *this;
  }
  // Moves keep indexes: std::set is node-based, so the moved-from set's tuple
  // nodes (and the index pointers into them) stay valid in the destination.
  Relation(Relation&&) = default;
  Relation& operator=(Relation&&) = default;

  const RelationSchema& schema() const { return schema_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Inserts a tuple; returns true if it was new. Fails on arity mismatch.
  Result<bool> Insert(Tuple tuple);

  bool Contains(const Tuple& tuple) const { return tuples_.count(tuple) > 0; }

  /// Removes a tuple; returns true if present.
  bool Erase(const Tuple& tuple) {
    bool removed = tuples_.erase(tuple) > 0;
    if (removed) ++version_;
    return removed;
  }

  void Clear() {
    tuples_.clear();
    ++version_;
  }

  const std::set<Tuple>& tuples() const { return tuples_; }

  /// Tuples containing no labeled null (the "certain" part of the instance).
  std::set<Tuple> CertainTuples() const;

  /// Lazy hash index: value at `column` -> tuples. Built on first use and
  /// invalidated by any mutation; lets the evaluator turn nested-loop joins
  /// into index lookups. Pointers remain valid while the relation is unchanged
  /// (tuples_ is node-based).
  using ColumnIndex = std::multimap<Value, const Tuple*>;
  const ColumnIndex& IndexOn(size_t column) const;

  /// Eagerly builds the index for every schema column. An immutable relation
  /// (an MVCC snapshot's) must call this before being shared across threads:
  /// afterwards concurrent IndexOn(c) calls for c < arity are pure reads,
  /// whereas the lazy path mutates `mutable` state under const.
  void PrebuildIndexes() const;

  /// Monotone mutation counter; lets callers cheaply detect change.
  uint64_t version() const { return version_; }

  /// Multi-line listing for debugging / example output.
  std::string ToString() const;

 private:
  RelationSchema schema_;
  std::set<Tuple> tuples_;
  mutable uint64_t indexed_version_ = 0;
  uint64_t version_ = 1;
  mutable std::map<size_t, ColumnIndex> indexes_;
};

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_RELATION_H_
