#include "src/relational/value.h"

#include "src/util/string_util.h"

namespace p2pdb::rel {

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = ValueKind::kString;
  out.str_ = std::move(v);
  return out;
}

Value Value::Null(uint64_t id) {
  Value out;
  out.kind_ = ValueKind::kNull;
  out.int_ = static_cast<int64_t>(id);
  return out;
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case ValueKind::kInt:
    case ValueKind::kNull:
      return int_ == other.int_;
    case ValueKind::kString:
      return str_ == other.str_;
  }
  return false;
}

bool Value::operator<(const Value& other) const {
  if (kind_ != other.kind_) return kind_ < other.kind_;
  switch (kind_) {
    case ValueKind::kInt:
    case ValueKind::kNull:
      return int_ < other.int_;
    case ValueKind::kString:
      return str_ < other.str_;
  }
  return false;
}

size_t Value::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b97f4a7c15ULL;
  if (kind_ == ValueKind::kString) {
    h ^= std::hash<std::string>()(str_);
  } else {
    h ^= std::hash<int64_t>()(int_) * 0xbf58476d1ce4e5b9ULL;
  }
  return h;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kInt:
      return std::to_string(int_);
    case ValueKind::kString:
      return "\"" + str_ + "\"";
    case ValueKind::kNull:
      return StrFormat("_:%u.%u", NullFactory::NodeOf(null_id()),
                       NullFactory::SeqOf(null_id()) & 0xffffffu);
  }
  return "?";
}

Value NullFactory::Fresh(uint32_t base_depth) {
  uint32_t depth = base_depth + 1;
  if (depth > 255) depth = 255;
  uint32_t seq = (next_seq_++ & 0xffffffu) | (depth << 24);
  uint64_t id = (static_cast<uint64_t>(node_id_) << 32) | seq;
  return Value::Null(id);
}

uint32_t NullFactory::DepthOf(uint64_t null_id) const {
  return DepthBitsOf(null_id);
}

}  // namespace p2pdb::rel
