// Value: a typed database constant. The paper assumes shared constants act as
// URIs across nodes; existential head variables are materialized as *labeled
// nulls* with network-unique identifiers (algorithm A6: "insert ... with new
// values for existential").
#ifndef P2PDB_RELATIONAL_VALUE_H_
#define P2PDB_RELATIONAL_VALUE_H_

#include <cstdint>
#include <functional>
#include <string>

namespace p2pdb::rel {

enum class ValueKind : uint8_t { kInt = 0, kString = 1, kNull = 2 };

/// An atomic value: 64-bit integer, string, or labeled null.
class Value {
 public:
  Value() : kind_(ValueKind::kInt), int_(0) {}

  static Value Int(int64_t v);
  static Value Str(std::string v);
  /// A labeled null with a network-unique identifier (see NullFactory).
  static Value Null(uint64_t id);

  ValueKind kind() const { return kind_; }
  bool is_null() const { return kind_ == ValueKind::kNull; }

  int64_t AsInt() const { return int_; }
  const std::string& AsStr() const { return str_; }
  uint64_t null_id() const { return static_cast<uint64_t>(int_); }

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: by kind, then by payload. Gives relations a deterministic
  /// iteration order regardless of insertion order.
  bool operator<(const Value& other) const;

  size_t Hash() const;

  /// Human-readable form: 42, "paper", or _:<node>.<seq> for nulls.
  std::string ToString() const;

 private:
  ValueKind kind_;
  int64_t int_;        // integer payload, or null id
  std::string str_;
};

/// Mints fresh labeled nulls. Each factory is owned by one node; the node id is
/// packed into the high bits so that ids are unique across the whole network
/// without coordination. Tracks an "invention depth" per null: a null created
/// from a binding that already contains nulls is one level deeper than the
/// deepest of those. The depth bound is the chase-termination safeguard used by
/// the update engine for rule sets that are not weakly acyclic.
class NullFactory {
 public:
  explicit NullFactory(uint32_t node_id) : node_id_(node_id) {}

  /// Creates a fresh null whose depth is `base_depth + 1`.
  Value Fresh(uint32_t base_depth = 0);

  /// Depth recorded for a null id; 0 for ids minted elsewhere (conservative).
  uint32_t DepthOf(uint64_t null_id) const;

  /// Extracts the minting node from any null id.
  static uint32_t NodeOf(uint64_t null_id) {
    return static_cast<uint32_t>(null_id >> 32);
  }
  static uint32_t SeqOf(uint64_t null_id) {
    return static_cast<uint32_t>(null_id & 0xffffffffu);
  }
  /// Depth is carried in the value itself so it survives network transfer:
  /// the top 8 bits of the sequence number encode min(depth, 255).
  static uint32_t DepthBitsOf(uint64_t null_id) {
    return (SeqOf(null_id) >> 24) & 0xffu;
  }

  /// Advances the counter so the next Fresh() mints a sequence strictly above
  /// `seq` (the low 24 bits of an existing id). Used after crash recovery:
  /// a restarted factory must not re-mint ids already in the recovered
  /// database.
  void ReserveThrough(uint32_t seq) {
    if (next_seq_ <= seq) next_seq_ = seq + 1;
  }

  uint64_t minted_count() const { return next_seq_; }

 private:
  uint32_t node_id_;
  uint32_t next_seq_ = 0;
};

}  // namespace p2pdb::rel

namespace std {
template <>
struct hash<p2pdb::rel::Value> {
  size_t operator()(const p2pdb::rel::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // P2PDB_RELATIONAL_VALUE_H_
