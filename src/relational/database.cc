#include "src/relational/database.h"

namespace p2pdb::rel {

Status Database::CreateRelation(RelationSchema schema) {
  const std::string name = schema.name();
  auto [it, inserted] = relations_.emplace(name, Relation(std::move(schema)));
  (void)it;
  if (!inserted) return Status::AlreadyExists("relation " + name);
  return Status::OK();
}

Result<const Relation*> Database::Get(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  return &it->second;
}

Result<Relation*> Database::GetMutable(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) return Status::NotFound("relation " + name);
  return &it->second;
}

Result<bool> Database::Insert(const std::string& relation, Tuple tuple) {
  auto rel = GetMutable(relation);
  if (!rel.ok()) return rel.status();
  return (*rel)->Insert(std::move(tuple));
}

size_t Database::TotalTuples() const {
  size_t n = 0;
  for (const auto& [name, relation] : relations_) n += relation.size();
  return n;
}

bool Database::operator==(const Database& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (const auto& [name, relation] : relations_) {
    auto it = other.relations_.find(name);
    if (it == other.relations_.end()) return false;
    if (!(relation.schema() == it->second.schema())) return false;
    if (relation.tuples() != it->second.tuples()) return false;
  }
  return true;
}

std::string Database::ToString() const {
  std::string out;
  for (const auto& [name, relation] : relations_) out += relation.ToString();
  return out;
}

}  // namespace p2pdb::rel
