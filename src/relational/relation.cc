#include "src/relational/relation.h"

#include "src/util/string_util.h"

namespace p2pdb::rel {

Result<bool> Relation::Insert(Tuple tuple) {
  if (tuple.arity() != schema_.arity()) {
    return Status::InvalidArgument(
        StrFormat("arity mismatch inserting into %s: got %zu, want %zu",
                  schema_.name().c_str(), tuple.arity(), schema_.arity()));
  }
  auto [it, added] = tuples_.insert(std::move(tuple));
  if (added) {
    // Keep live indexes fresh incrementally: rebuilding on every insert would
    // make chase loops quadratic.
    bool indexes_were_fresh = indexed_version_ == version_;
    ++version_;
    if (indexes_were_fresh && !indexes_.empty()) {
      for (auto& [column, index] : indexes_) {
        if (column < it->arity()) index.emplace(it->at(column), &*it);
      }
      indexed_version_ = version_;
    }
  }
  return added;
}

const Relation::ColumnIndex& Relation::IndexOn(size_t column) const {
  if (indexed_version_ != version_) {
    indexes_.clear();
    indexed_version_ = version_;
  }
  auto it = indexes_.find(column);
  if (it == indexes_.end()) {
    ColumnIndex index;
    for (const Tuple& t : tuples_) {
      if (column < t.arity()) index.emplace(t.at(column), &t);
    }
    it = indexes_.emplace(column, std::move(index)).first;
  }
  return it->second;
}

void Relation::PrebuildIndexes() const {
  for (size_t column = 0; column < schema_.arity(); ++column) {
    (void)IndexOn(column);
  }
}

std::set<Tuple> Relation::CertainTuples() const {
  std::set<Tuple> out;
  for (const Tuple& t : tuples_) {
    if (!t.HasNull()) out.insert(t);
  }
  return out;
}

std::string Relation::ToString() const {
  std::string out = schema_.ToString() + " {" +
                    std::to_string(tuples_.size()) + " tuples}\n";
  for (const Tuple& t : tuples_) {
    out += "  " + t.ToString() + "\n";
  }
  return out;
}

}  // namespace p2pdb::rel
