#include "src/relational/snapshot.h"

#include <cstdio>

#include "src/relational/codec.h"

namespace p2pdb::rel {

namespace {
constexpr uint32_t kMagic = 0x42443250;  // "P2DB" little-endian.
constexpr uint32_t kFormatVersion = 1;
}  // namespace

std::vector<uint8_t> SerializeDatabase(const Database& db) {
  Writer w;
  w.PutU32(kMagic);
  w.PutU32(kFormatVersion);
  w.PutVarint(db.relations().size());
  for (const auto& [name, relation] : db.relations()) {
    w.PutString(name);
    const RelationSchema& schema = relation.schema();
    w.PutVarint(schema.arity());
    for (const std::string& attr : schema.attributes()) w.PutString(attr);
    EncodeTupleSet(relation.tuples(), &w);
  }
  return w.bytes();
}

Result<Database> DeserializeDatabase(const std::vector<uint8_t>& bytes) {
  Reader r(bytes);
  auto magic = r.GetU32();
  if (!magic.ok()) return magic.status();
  if (*magic != kMagic) return Status::ParseError("not a p2pdb snapshot");
  auto version = r.GetU32();
  if (!version.ok()) return version.status();
  if (*version != kFormatVersion) {
    return Status::Unsupported("snapshot format version " +
                               std::to_string(*version));
  }
  auto relation_count = r.GetVarint();
  if (!relation_count.ok()) return relation_count.status();

  Database db;
  for (uint64_t i = 0; i < *relation_count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    std::string rel_name = *name;
    auto arity = r.GetVarint();
    if (!arity.ok()) return arity.status();
    std::vector<std::string> attrs;
    for (uint64_t k = 0; k < *arity; ++k) {
      auto attr = r.GetString();
      if (!attr.ok()) return attr.status();
      attrs.push_back(std::move(*attr));
    }
    P2PDB_RETURN_IF_ERROR(
        db.CreateRelation(RelationSchema(rel_name, std::move(attrs))));
    auto tuples = DecodeTupleSet(&r);
    if (!tuples.ok()) return tuples.status();
    Relation* relation = *db.GetMutable(rel_name);
    for (const Tuple& t : *tuples) {
      P2PDB_RETURN_IF_ERROR(relation->Insert(t).status());
    }
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in snapshot");
  return db;
}

Status SaveDatabase(const Database& db, const std::string& path) {
  std::vector<uint8_t> bytes = SerializeDatabase(db);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  int close_rc = std::fclose(f);
  if (written != bytes.size() || close_rc != 0) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Result<Database> LoadDatabase(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::vector<uint8_t> bytes;
  uint8_t buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.insert(bytes.end(), buffer, buffer + n);
  }
  std::fclose(f);
  return DeserializeDatabase(bytes);
}

}  // namespace p2pdb::rel
