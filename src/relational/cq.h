// Conjunctive queries with built-in predicates — the query language of both
// rule bodies and rule heads (Definition 2 allows conjunctive formulas with
// built-ins on either side, e.g. rule r4's X != Z).
#ifndef P2PDB_RELATIONAL_CQ_H_
#define P2PDB_RELATIONAL_CQ_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/relational/value.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// A term in an atom: either a variable (by name) or a constant value.
struct Term {
  enum class Kind { kVar, kConst } kind = Kind::kVar;
  std::string var;
  Value constant;

  static Term Var(std::string name) {
    Term t;
    t.kind = Kind::kVar;
    t.var = std::move(name);
    return t;
  }
  static Term Const(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }
  bool is_var() const { return kind == Kind::kVar; }

  bool operator==(const Term& other) const;
  std::string ToString() const;
};

/// A relational atom r(t1, ..., tk).
struct Atom {
  std::string relation;
  std::vector<Term> terms;

  std::string ToString() const;
  /// Names of all variables occurring in the atom, in order of appearance.
  std::vector<std::string> Variables() const;
};

enum class BuiltinOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* BuiltinOpName(BuiltinOp op);

/// A built-in comparison between two terms, e.g. X != Z.
struct Builtin {
  BuiltinOp op = BuiltinOp::kEq;
  Term lhs;
  Term rhs;

  std::string ToString() const;
};

/// Evaluates a comparison over concrete values. Order across kinds follows
/// Value::operator< (ints < strings < nulls); nulls compare by identity.
bool EvalBuiltin(BuiltinOp op, const Value& lhs, const Value& rhs);

/// A variable binding produced by query evaluation.
using Binding = std::map<std::string, Value>;

/// A conjunctive query: answer variables, relational atoms, built-ins.
/// With an empty atom list it denotes a boolean/constant query.
struct ConjunctiveQuery {
  std::vector<std::string> head_vars;
  std::vector<Atom> atoms;
  std::vector<Builtin> builtins;

  /// Distinct variables appearing in atoms, in order of first appearance.
  std::vector<std::string> BodyVariables() const;

  /// OK iff every head variable and every built-in variable occurs in some
  /// atom (range restriction; the evaluator requires it).
  Status CheckSafe() const;

  std::string ToString() const;
};

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_CQ_H_
