// MVCC read snapshots: immutable, shareable point-in-time views of one
// peer's database, published through a lock-free SnapshotStore so any number
// of reader threads can answer point lookups and conjunctive queries while
// the chase keeps applying deltas to the live database underneath.
//
// Writer protocol (one writer per store — the peer's runtime-serialized
// update path): on each committed delta batch, copy only the relations the
// batch touched (sharing every untouched relation with the previous snapshot
// by shared_ptr), pre-build all column indexes on the copies, then Publish()
// with a release store. Readers Acquire() with a single atomic raw-pointer
// load — no mutex, no condvar, and nothing a reader does can block the
// writer or other readers.
//
// Why not std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic guards its
// pointer field with a lock bit but unlocks the read side with a relaxed
// fetch_sub, so a reader's critical section has no release edge to the next
// writer — a (benign on x86, but real per the memory model) data race that
// TSan reports. Instead the store retains every snapshot it has ever
// published in a writer-locked list and hands readers an aliasing
// shared_ptr onto that list: the read path is one acquire load plus one
// refcount increment on the long-lived anchor, wait-free and TSan-clean.
// Retention is bounded by what an update allocates anyway (copy-on-write
// shares untouched relations) and is released when the last reader and the
// store are gone.
#ifndef P2PDB_RELATIONAL_MVCC_H_
#define P2PDB_RELATIONAL_MVCC_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/relational/database.h"

namespace p2pdb::rel {

/// An immutable point-in-time view of one peer's database. Evaluates queries
/// directly (it is a ReadView) and is safe to share across threads: every
/// column index is pre-built before publication, so reads never mutate.
class DbSnapshot : public ReadView {
 public:
  using RelationMap = std::map<std::string, std::shared_ptr<const Relation>>;

  DbSnapshot() = default;
  DbSnapshot(uint64_t version, RelationMap relations)
      : version_(version), relations_(std::move(relations)) {}

  const Relation* FindRelation(const std::string& name) const override {
    auto it = relations_.find(name);
    return it == relations_.end() ? nullptr : it->second.get();
  }

  /// Number of delta batches folded in (0 = the peer's initial database).
  uint64_t version() const { return version_; }
  size_t relation_count() const { return relations_.size(); }
  size_t TotalTuples() const;
  const RelationMap& relations() const { return relations_; }

 private:
  uint64_t version_ = 0;
  RelationMap relations_;
};

using SnapshotPtr = std::shared_ptr<const DbSnapshot>;

/// Deep-copies `db` into a fresh snapshot tagged `version`, pre-building all
/// indexes. Used at peer construction and after recovery.
SnapshotPtr BuildSnapshot(const Database& db, uint64_t version);

/// Copy-on-write step: relations named in `touched` are re-copied from `db`
/// (which already holds the committed batch); everything else is shared with
/// `prev`. Relations present in `db` but absent from `prev` are copied too,
/// so a relation created since the last snapshot is never dropped.
SnapshotPtr AdvanceSnapshot(const SnapshotPtr& prev, const Database& db,
                            const std::vector<std::string>& touched,
                            uint64_t version);

/// Lock-free publication point between one writer and any number of reader
/// threads. The store always holds a snapshot (initially an empty one), so
/// Acquire() never returns null and a reader that outlives its peer (churn)
/// keeps getting the last committed state.
class SnapshotStore {
 public:
  SnapshotStore() : retained_(std::make_shared<Retained>()) {
    SnapshotPtr first = std::make_shared<const DbSnapshot>();
    current_.store(first.get(), std::memory_order_release);
    retained_->all.push_back(std::move(first));  // No readers exist yet.
  }

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The read path: one atomic acquire load of the current snapshot pointer,
  /// wrapped in an aliasing shared_ptr on the retention anchor — a stable
  /// reference no later Publish (or even store destruction) can invalidate.
  SnapshotPtr Acquire() const {
    const DbSnapshot* snap = current_.load(std::memory_order_acquire);
    return SnapshotPtr(retained_, snap);
  }

  /// Publishes a fully built snapshot (retain, then release-store the raw
  /// pointer). Writer-side only; the mutex never appears on the read path.
  void Publish(SnapshotPtr next) {
    const DbSnapshot* raw = next.get();
    {
      std::lock_guard<std::mutex> lock(retained_->mutex);
      retained_->all.push_back(std::move(next));
    }
    published_version_.store(raw->version(), std::memory_order_relaxed);
    current_.store(raw, std::memory_order_release);
  }

  /// Version of the currently published snapshot.
  uint64_t PublishedVersion() const {
    return published_version_.load(std::memory_order_relaxed);
  }

  /// Delta batches the writer has committed to the live database. Bumped by
  /// the writer before it starts building the successor snapshot, so
  /// CommittedBatches() - snapshot->version() is how many batches a reader's
  /// view lags (normally 0; briefly 1 while the writer rebuilds).
  uint64_t CommittedBatches() const {
    return committed_batches_.load(std::memory_order_relaxed);
  }
  uint64_t NoteBatchCommitted() {
    return committed_batches_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  /// Keeps every published snapshot alive. Readers share ownership of the
  /// whole list through the aliasing shared_ptr, so a raw snapshot pointer
  /// loaded from current_ can never dangle; snapshots are freed when the
  /// store and the last outstanding reader reference are gone.
  struct Retained {
    std::mutex mutex;  // Guards `all`; taken by writers only.
    std::vector<SnapshotPtr> all;
  };

  std::shared_ptr<Retained> retained_;
  std::atomic<const DbSnapshot*> current_{nullptr};
  std::atomic<uint64_t> committed_batches_{0};
  std::atomic<uint64_t> published_version_{0};
};

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_MVCC_H_
