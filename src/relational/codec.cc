#include "src/relational/codec.h"

namespace p2pdb::rel {

void EncodeValue(const Value& v, Writer* w) {
  w->PutU8(static_cast<uint8_t>(v.kind()));
  switch (v.kind()) {
    case ValueKind::kInt:
      w->PutI64(v.AsInt());
      break;
    case ValueKind::kString:
      w->PutString(v.AsStr());
      break;
    case ValueKind::kNull:
      w->PutU64(v.null_id());
      break;
  }
}

Result<Value> DecodeValue(Reader* r) {
  auto tag = r->GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<ValueKind>(*tag)) {
    case ValueKind::kInt: {
      auto i = r->GetI64();
      if (!i.ok()) return i.status();
      return Value::Int(*i);
    }
    case ValueKind::kString: {
      auto s = r->GetString();
      if (!s.ok()) return s.status();
      return Value::Str(std::move(*s));
    }
    case ValueKind::kNull: {
      auto id = r->GetU64();
      if (!id.ok()) return id.status();
      return Value::Null(*id);
    }
  }
  return Status::ParseError("bad value tag");
}

void EncodeTuple(const Tuple& t, Writer* w) {
  w->PutVarint(t.arity());
  for (const Value& v : t.values()) EncodeValue(v, w);
}

Result<Tuple> DecodeTuple(Reader* r) {
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  std::vector<Value> values;
  values.reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto v = DecodeValue(r);
    if (!v.ok()) return v.status();
    values.push_back(std::move(*v));
  }
  return Tuple(std::move(values));
}

void EncodeTupleSet(const std::set<Tuple>& tuples, Writer* w) {
  w->PutVarint(tuples.size());
  for (const Tuple& t : tuples) EncodeTuple(t, w);
}

Result<std::set<Tuple>> DecodeTupleSet(Reader* r) {
  auto n = r->GetVarint();
  if (!n.ok()) return n.status();
  std::set<Tuple> out;
  for (uint64_t i = 0; i < *n; ++i) {
    auto t = DecodeTuple(r);
    if (!t.ok()) return t.status();
    out.insert(std::move(*t));
  }
  return out;
}

}  // namespace p2pdb::rel
