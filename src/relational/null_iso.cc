#include "src/relational/null_iso.h"

#include <map>
#include <vector>

namespace p2pdb::rel {

namespace {

// One relational fact as (relation name, tuple), flattened for matching.
struct Fact {
  const std::string* relation;
  const Tuple* tuple;
};

std::vector<Fact> Flatten(const Database& db, bool nulls_only) {
  std::vector<Fact> out;
  for (const auto& [name, relation] : db.relations()) {
    for (const Tuple& t : relation.tuples()) {
      if (!nulls_only || t.HasNull()) out.push_back(Fact{&name, &t});
    }
  }
  return out;
}

// Tries to map fact `f` onto some fact of `candidates` consistently with
// `mapping` (injective when `injective`). Recursion over the facts of `a`.
bool MatchFacts(const std::vector<Fact>& a_facts, size_t index,
                const Database& b, std::map<uint64_t, Value>* mapping,
                std::map<Value, uint64_t>* reverse, bool injective) {
  if (index == a_facts.size()) return true;
  const Fact& f = a_facts[index];
  auto rel = b.Get(*f.relation);
  if (!rel.ok()) return false;
  for (const Tuple& candidate : (*rel)->tuples()) {
    if (candidate.arity() != f.tuple->arity()) continue;
    // Try to extend the mapping so f.tuple -> candidate.
    std::vector<uint64_t> added;
    std::vector<Value> added_rev;
    bool ok = true;
    for (size_t i = 0; i < f.tuple->arity(); ++i) {
      const Value& av = f.tuple->at(i);
      const Value& bv = candidate.at(i);
      if (!av.is_null()) {
        if (!(av == bv)) {
          ok = false;
          break;
        }
        continue;
      }
      auto it = mapping->find(av.null_id());
      if (it != mapping->end()) {
        if (!(it->second == bv)) {
          ok = false;
          break;
        }
        continue;
      }
      if (injective) {
        if (!bv.is_null() || reverse->count(bv)) {
          ok = false;
          break;
        }
        reverse->emplace(bv, av.null_id());
        added_rev.push_back(bv);
      }
      mapping->emplace(av.null_id(), bv);
      added.push_back(av.null_id());
    }
    if (ok && MatchFacts(a_facts, index + 1, b, mapping, reverse, injective)) {
      return true;
    }
    for (uint64_t id : added) mapping->erase(id);
    for (const Value& v : added_rev) reverse->erase(v);
  }
  return false;
}

bool NullFactsMapInto(const Database& a, const Database& b, bool injective) {
  std::vector<Fact> a_null_facts = Flatten(a, /*nulls_only=*/true);
  std::map<uint64_t, Value> mapping;
  std::map<Value, uint64_t> reverse;
  return MatchFacts(a_null_facts, 0, b, &mapping, &reverse, injective);
}

}  // namespace

bool DatabasesIsomorphic(const Database& a, const Database& b) {
  // Structural preconditions: same relations and cardinalities, identical
  // certain parts.
  if (a.relations().size() != b.relations().size()) return false;
  for (const auto& [name, relation] : a.relations()) {
    auto other = b.Get(name);
    if (!other.ok()) return false;
    if (relation.size() != (*other)->size()) return false;
    if (relation.CertainTuples() != (*other)->CertainTuples()) return false;
  }
  // Injective mapping in both directions suffices given equal cardinalities.
  return NullFactsMapInto(a, b, /*injective=*/true) &&
         NullFactsMapInto(b, a, /*injective=*/true);
}

bool DatabasesCertainEqual(const Database& a, const Database& b) {
  if (a.relations().size() != b.relations().size()) return false;
  for (const auto& [name, relation] : a.relations()) {
    auto other = b.Get(name);
    if (!other.ok()) return false;
    if (relation.CertainTuples() != (*other)->CertainTuples()) return false;
  }
  return true;
}

bool DatabaseHomomorphicallyContained(const Database& sub,
                                      const Database& sup) {
  for (const auto& [name, relation] : sub.relations()) {
    auto other = sup.Get(name);
    if (!other.ok()) return false;
    // Certain tuples must be present verbatim.
    for (const Tuple& t : relation.CertainTuples()) {
      if (!(*other)->Contains(t)) return false;
    }
  }
  std::vector<Fact> null_facts = Flatten(sub, /*nulls_only=*/true);
  std::map<uint64_t, Value> mapping;
  std::map<Value, uint64_t> reverse;
  return MatchFacts(null_facts, 0, sup, &mapping, &reverse,
                    /*injective=*/false);
}

}  // namespace p2pdb::rel
