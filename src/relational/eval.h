// Conjunctive query evaluation over any ReadView (a live database or an
// immutable MVCC snapshot).
#ifndef P2PDB_RELATIONAL_EVAL_H_
#define P2PDB_RELATIONAL_EVAL_H_

#include <set>
#include <vector>

#include "src/relational/cq.h"
#include "src/relational/database.h"
#include "src/util/status.h"

namespace p2pdb::rel {

/// Evaluates the query body and returns the projection onto head_vars as a
/// sorted, duplicate-free set of tuples (set semantics).
///
/// Strategy: greedy atom reordering (most-bound atom first) with backtracking
/// unification; built-ins are applied as soon as both sides are bound. This is
/// adequate for the paper's workloads (~10^3 tuples per node).
Result<std::set<Tuple>> EvaluateQuery(const ReadView& db,
                                      const ConjunctiveQuery& query);

/// Like EvaluateQuery but returns the full bindings (one per result), used by
/// the chase when applying rule heads that need body variable values.
Result<std::vector<Binding>> EvaluateBindings(const ReadView& db,
                                              const ConjunctiveQuery& query);

/// Semi-naive (incremental) evaluation: answers of `query` that use at least
/// one tuple of `delta` in the occurrence `delta_atom` (index into
/// query.atoms). The delta atom is matched against `delta` only; the other
/// atoms read the (already updated) database. Union over all atom occurrences
/// of a changed relation yields the exact new answers of a monotone update.
Result<std::set<Tuple>> EvaluateQueryDelta(const ReadView& db,
                                           const ConjunctiveQuery& query,
                                           size_t delta_atom,
                                           const std::set<Tuple>& delta);

/// True if the atom matches the tuple under `binding`, extending it in place.
/// On mismatch the binding is left unchanged.
bool UnifyAtomWithTuple(const Atom& atom, const Tuple& tuple, Binding* binding);

}  // namespace p2pdb::rel

#endif  // P2PDB_RELATIONAL_EVAL_H_
