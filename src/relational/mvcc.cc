#include "src/relational/mvcc.h"

namespace p2pdb::rel {

namespace {

/// Copies one live relation into an immutable, fully indexed instance. The
/// copy drops the source's index state (see Relation's copy constructor) and
/// rebuilds it here, on the writer thread, before any reader can see it.
std::shared_ptr<const Relation> FreezeRelation(const Relation& live) {
  auto frozen = std::make_shared<Relation>(live);
  frozen->PrebuildIndexes();
  return frozen;
}

}  // namespace

size_t DbSnapshot::TotalTuples() const {
  size_t total = 0;
  for (const auto& [name, relation] : relations_) {
    (void)name;
    total += relation->size();
  }
  return total;
}

SnapshotPtr BuildSnapshot(const Database& db, uint64_t version) {
  DbSnapshot::RelationMap relations;
  for (const auto& [name, relation] : db.relations()) {
    relations.emplace(name, FreezeRelation(relation));
  }
  return std::make_shared<const DbSnapshot>(version, std::move(relations));
}

SnapshotPtr AdvanceSnapshot(const SnapshotPtr& prev, const Database& db,
                            const std::vector<std::string>& touched,
                            uint64_t version) {
  // Start from the previous snapshot's relations (cheap shared_ptr copies),
  // then re-freeze exactly what changed. The chase only inserts, so a
  // relation absent from `touched` is bit-identical to its previous frozen
  // copy — that sharing is what makes per-batch publication affordable.
  DbSnapshot::RelationMap relations =
      prev != nullptr ? prev->relations() : DbSnapshot::RelationMap{};
  for (const std::string& name : touched) {
    const Relation* live = db.FindRelation(name);
    if (live == nullptr) continue;  // Touched then dropped: nothing to carry.
    relations[name] = FreezeRelation(*live);
  }
  // A relation created since `prev` that the batch did not name (schema
  // growth outside the delta path) must still appear.
  for (const auto& [name, relation] : db.relations()) {
    if (relations.count(name) == 0) {
      relations.emplace(name, FreezeRelation(relation));
    }
  }
  return std::make_shared<const DbSnapshot>(version, std::move(relations));
}

}  // namespace p2pdb::rel
