#include "src/relational/schema.h"

#include "src/util/string_util.h"

namespace p2pdb::rel {

Result<size_t> RelationSchema::AttributeIndex(const std::string& attr) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i] == attr) return i;
  }
  return Status::NotFound("attribute " + attr + " in relation " + name_);
}

std::string RelationSchema::ToString() const {
  return name_ + "(" + JoinStrings(attributes_, ", ") + ")";
}

}  // namespace p2pdb::rel
